"""End-to-end chaos harness: whole simulations under fault injection.

The contract (ISSUE acceptance criteria): with any single fault class
enabled, every workload completes, zero incorrect translations are
served (verified against the authoritative mapping set each reference),
recovery work is visible in ``SimResult``, and with all faults disabled
the cycle counts are bit-identical to a run with no injector at all.
"""

import pytest

from repro.faults import FaultKind, FaultPlan
from repro.sim import SimConfig, Simulator, run_suite
from repro.workloads import build_workload

REFS = 4_000
WORKLOADS = ["gups", "bfs"]


def chaos_run(kind, rate, refs=REFS, workloads=WORKLOADS, seed=0):
    plan = FaultPlan.single(kind, rate=rate, seed=seed)
    config = SimConfig(num_refs=refs, faults=plan, verify_translations=True)
    return run_suite(
        workload_names=workloads, schemes=("lvm",), page_modes=(False,),
        config=config,
    )


@pytest.mark.timeout(600)
@pytest.mark.parametrize("kind", list(FaultKind))
class TestEveryFaultClassAt1em3:
    """The headline criterion: rate 1e-3, all workloads, no wrong PTEs."""

    def test_completes_with_zero_incorrect_translations(self, kind):
        results = chaos_run(kind, rate=1e-3)
        assert not results.failures
        assert len(results.results) == len(WORKLOADS)
        for r in results.results:
            assert r.refs == REFS
            assert r.cycles > 0
            assert r.incorrect_translations == 0


@pytest.mark.timeout(600)
class TestRecoveryCountersVisible:
    """Targeted rates high enough that each ladder rung provably ran."""

    def test_pte_bitflip_recovery(self):
        # bfs revisits its footprint densely, so corrupted entries are
        # re-probed and the scan → retrain ladder engages.
        results = chaos_run(
            FaultKind.PTE_BITFLIP, rate=0.02, refs=8_000, workloads=["bfs"]
        )
        r = results.results[0]
        assert r.faults_injected > 0
        assert r.recoveries > 0
        assert r.recovery_detail.get("corrupt_entries_detected", 0) > 0
        assert r.recovery_cycles > 0  # fallback walk penalty is visible
        assert r.incorrect_translations == 0

    def test_model_perturb_recovery(self):
        results = chaos_run(
            FaultKind.MODEL_PERTURB, rate=0.01, refs=8_000, workloads=["gups"]
        )
        r = results.results[0]
        assert r.faults_injected > 0
        assert r.recovery_detail.get("recovered_scans", 0) > 0
        assert r.recovery_detail.get("recovered_retrains", 0) > 0
        assert r.recovery_cycles > 0
        assert r.incorrect_translations == 0

    def test_alloc_fail_retry_with_backoff(self):
        results = chaos_run(
            FaultKind.ALLOC_FAIL, rate=0.5, refs=8_000, workloads=["gups"]
        )
        r = results.results[0]
        assert r.faults_injected > 0
        assert r.recovery_detail.get("alloc_retries", 0) > 0
        assert r.incorrect_translations == 0

    def test_walk_cache_poison_detected(self):
        results = chaos_run(
            FaultKind.WALK_CACHE_CORRUPT, rate=0.01, refs=8_000,
            workloads=["gups"],
        )
        r = results.results[0]
        assert r.faults_injected > 0
        assert r.poison_detections > 0
        assert r.incorrect_translations == 0

    def test_kernel_event_faults_absorbed(self):
        results = chaos_run(
            FaultKind.KERNEL_EVENTS, rate=1e-3, refs=8_000, workloads=["gups"]
        )
        r = results.results[0]
        detail = r.recovery_detail
        assert r.faults_injected > 0
        assert detail.get("dropped_mmap_events", 0) > 0
        assert detail.get("duplicate_events", 0) > 0
        # Every duplicate delivery bounced off the invariant guard.
        assert detail["duplicate_rejects"] == detail["duplicate_events"]
        assert r.incorrect_translations == 0


@pytest.mark.timeout(600)
class TestBitIdentity:
    """Faults disabled ⇒ the injector must not perturb anything."""

    @staticmethod
    def _fingerprint(result):
        return (
            result.cycles, result.mmu_cycles, result.walk_cycles,
            result.walk_traffic, result.index_size_bytes,
            result.l2_tlb_miss_rate,
        )

    def test_zero_rate_plan_is_bit_identical(self):
        workload = build_workload("gups")
        baseline = Simulator(
            "lvm", workload, SimConfig(num_refs=REFS)
        ).run()
        zeroed = Simulator(
            "lvm", workload,
            SimConfig(num_refs=REFS, faults=FaultPlan(seed=123)),
        ).run()
        assert self._fingerprint(zeroed) == self._fingerprint(baseline)
        assert zeroed.faults_injected == 0
        assert zeroed.recoveries == 0
        assert zeroed.recovery_cycles == 0

    def test_zero_rate_plan_builds_no_injector(self):
        sim = Simulator(
            "lvm", build_workload("gups"),
            SimConfig(num_refs=100, faults=FaultPlan(seed=1)),
        )
        assert sim.injector is None

    def test_seed_changes_injection_pattern_not_correctness(self):
        a = chaos_run(FaultKind.MODEL_PERTURB, rate=0.01, refs=4_000,
                      workloads=["gups"], seed=1).results[0]
        b = chaos_run(FaultKind.MODEL_PERTURB, rate=0.01, refs=4_000,
                      workloads=["gups"], seed=2).results[0]
        assert a.incorrect_translations == 0
        assert b.incorrect_translations == 0
        # Different seeds perturb different leaves at different times.
        assert (a.cycles, a.recoveries) != (b.cycles, b.recoveries)


@pytest.mark.timeout(600)
class TestChaosCLI:
    def test_chaos_command_runs(self, capsys):
        from repro.cli import main

        assert main([
            "chaos", "--workloads", "gups", "--refs", "2000",
            "--fault-rate", "0.01",
        ]) == 0
        out = capsys.readouterr().out
        assert "graceful degradation" in out
        for kind in FaultKind:
            assert kind.value in out
