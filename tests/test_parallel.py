"""Parallel sweep engine (`repro.sim.parallel`): bit-identity with the
serial path, deterministic ordering, serial error semantics, and the
CPU-count guardrail."""

import os
from dataclasses import asdict

import pytest

from repro.errors import ConfigError, ReproError
from repro.faults import FaultPlan
from repro.sim import SimConfig, run_suite
from repro.sim.parallel import (
    default_jobs,
    make_specs,
    resolve_jobs,
    run_specs_parallel,
)
from repro.sim.runner import summarize_speedups

REFS = 2_000
WORKLOADS = ["gups", "mem$"]
SCHEMES = ["radix", "lvm"]


@pytest.fixture(autouse=True)
def _allow_oversubscription(monkeypatch):
    """These tests exercise the *pool* (bit-identity, ordering, worker
    error semantics), so the CPU-count guardrail must not silently turn
    jobs=4 into the serial loop on a small CI box.  Guardrail tests
    below delete the variable again."""
    monkeypatch.setenv("REPRO_OVERSUBSCRIBE", "1")


def _suite(jobs, config=None, **kwargs):
    cfg = config or SimConfig(num_refs=REFS)
    return run_suite(WORKLOADS, SCHEMES, config=cfg, jobs=jobs, **kwargs)


class TestBitIdentity:
    def test_serial_vs_parallel_field_for_field(self):
        serial = _suite(jobs=1)
        parallel = _suite(jobs=4)
        assert len(serial.results) == len(parallel.results) == 8
        assert not serial.failures and not parallel.failures
        for a, b in zip(serial.results, parallel.results):
            assert asdict(a) == asdict(b)

    def test_serial_vs_parallel_with_faults(self):
        """Fault injection is per-run seeded, so a sweep carrying a
        non-zero FaultPlan must also come back bit-identical — the
        fault counters included."""
        plan = FaultPlan(seed=11, pte_bitflip_rate=2e-3)
        serial = _suite(jobs=1, config=SimConfig(num_refs=REFS, faults=plan))
        parallel = _suite(jobs=4, config=SimConfig(num_refs=REFS, faults=plan))
        assert sum(r.faults_injected for r in serial.results) > 0
        for a, b in zip(serial.results, parallel.results):
            assert asdict(a) == asdict(b)


class TestOrdering:
    def test_results_in_spec_order(self):
        """Results come back in (thp, workload, scheme) nesting order
        regardless of which worker finishes first."""
        parallel = _suite(jobs=4)
        order = [(r.thp, r.workload, r.scheme) for r in parallel.results]
        expected = [
            (thp, name, scheme)
            for thp in (False, True)
            for name in WORKLOADS
            for scheme in SCHEMES
        ]
        assert order == expected

    def test_make_specs_matches_serial_nesting(self):
        specs = make_specs(WORKLOADS, SCHEMES, [False, True], SimConfig())
        assert [(s.thp, s.workload, s.scheme) for s in specs] == [
            (thp, name, scheme)
            for thp in (False, True)
            for name in WORKLOADS
            for scheme in SCHEMES
        ]


class TestErrorSemantics:
    # A 1 MB physical budget cannot hold the 4 KB-page page tables, so
    # every thp=False run deterministically raises a ReproError
    # (OutOfPhysicalMemory / GPTFullError); the thp=True runs map with
    # 2 MB pages, need far fewer tables, and succeed — a sweep with
    # both failures and results in one pass.
    FAILING = dict(num_refs=REFS, phys_mem_bytes=1 << 20)

    def test_collect_matches_serial(self):
        serial = _suite(
            jobs=1, config=SimConfig(**self.FAILING), on_error="collect"
        )
        parallel = _suite(
            jobs=4, config=SimConfig(**self.FAILING), on_error="collect"
        )
        assert len(serial.failures) == len(parallel.failures) == 4
        assert len(serial.results) == len(parallel.results) == 4
        for a, b in zip(serial.failures, parallel.failures):
            assert asdict(a) == asdict(b)
        for a, b in zip(serial.results, parallel.results):
            assert asdict(a) == asdict(b)

    def test_raise_propagates_repro_error(self):
        with pytest.raises(ReproError):
            _suite(jobs=4, config=SimConfig(**self.FAILING), on_error="raise")

    def test_unknown_workload_rejected_before_forking(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            make_specs(["nope"], SCHEMES, [False], SimConfig())

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigError, match="jobs"):
            _suite(jobs=0)
        with pytest.raises(ConfigError, match="jobs"):
            run_specs_parallel([], jobs=0)


class TestDefaultJobs:
    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs() == 6

    def test_env_variable_capped_at_cpu_count(self, monkeypatch):
        """Without the oversubscription escape hatch, REPRO_JOBS is
        clamped to the visible CPUs — more workers than cores measured
        slower than serial."""
        monkeypatch.delenv("REPRO_OVERSUBSCRIBE", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert default_jobs() == 2
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert default_jobs() == 2

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "")
        assert default_jobs() == 1

    def test_garbage_is_a_config_error(self, monkeypatch):
        """A malformed REPRO_JOBS is a configuration mistake naming the
        offending value, not a silent fallback to serial."""
        monkeypatch.setenv("REPRO_JOBS", "abc")
        with pytest.raises(ConfigError, match="'abc'"):
            default_jobs()
        monkeypatch.setenv("REPRO_JOBS", "-3")
        with pytest.raises(ConfigError, match="'-3'"):
            default_jobs()
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ConfigError, match="'0'"):
            default_jobs()


class TestJobsGuardrail:
    """run_suite falls back to the serial path — with a logged reason —
    whenever a pool cannot win: more workers than CPUs, or fewer grid
    cells than workers."""

    @pytest.fixture(autouse=True)
    def _guardrail_armed(self, monkeypatch):
        monkeypatch.delenv("REPRO_OVERSUBSCRIBE", raising=False)

    def test_resolve_jobs_oversubscription(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        jobs, reason = resolve_jobs(4, num_specs=12)
        assert jobs == 1 and "2 visible CPU" in reason
        jobs, reason = resolve_jobs(2, num_specs=12)
        assert jobs == 2 and reason is None

    def test_resolve_jobs_tiny_grid(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        jobs, reason = resolve_jobs(4, num_specs=2)
        assert jobs == 1 and "2 cell(s)" in reason

    def test_resolve_jobs_keeps_pool_for_deadlines(self, monkeypatch):
        """A run_timeout needs a killable subprocess: the guardrail
        never downgrades supervised runs to in-process execution."""
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        jobs, reason = resolve_jobs(4, num_specs=12, run_timeout=60.0)
        assert jobs == 4 and reason is None

    def test_resolve_jobs_escape_hatch(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        monkeypatch.setenv("REPRO_OVERSUBSCRIBE", "1")
        jobs, reason = resolve_jobs(4, num_specs=12)
        assert jobs == 4 and reason is None

    def test_run_suite_fallback_logs_and_stays_bit_identical(
        self, monkeypatch, capsys
    ):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        serial = _suite(jobs=1)
        fallback = _suite(jobs=4)
        err = capsys.readouterr().err
        assert "falling back to serial" in err
        for a, b in zip(serial.results, fallback.results):
            assert asdict(a) == asdict(b)


class TestSummarizeSpeedups:
    def test_rows_are_dicts(self):
        results = run_suite(
            ["gups"], ["radix", "lvm"], page_modes=[False],
            config=SimConfig(num_refs=REFS),
        )
        rows = summarize_speedups(results, thp=False)
        assert isinstance(rows, list) and len(rows) == 1
        row = rows[0]
        assert isinstance(row, dict)
        assert row["workload"] == "gups"
        assert row["radix"] == pytest.approx(1.0)
        assert isinstance(row["lvm"], float)
        # Schemes absent from the ResultSet are omitted, not padded.
        assert "ecpt" not in row and "ideal" not in row
