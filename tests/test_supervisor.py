"""Chaos tests for the sweep supervisor (`repro.sim.supervisor`) and
the crash-safe run journal (`repro.sim.journal`).

The properties pinned here are the ones a long evaluation depends on:

* a worker killed mid-sweep is retried and the sweep's ResultSet is
  bit-identical to a serial run, with zero lost or duplicated cells;
* a hung run is timed out in the parent, retried, and finally
  quarantined as a structured failure carrying its attempt count;
* a sweep checkpointed to a journal — even one with a torn final
  record — resumes to a ResultSet bit-identical to the golden
  pre-refactor cells;
* a journal written under a different configuration is rejected with
  a typed ``JournalMismatchError`` (exit code 2 through the CLI).
"""

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import asdict
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.errors import (
    ConfigError,
    JournalMismatchError,
    SpecQuarantinedError,
    SweepInterrupted,
)
from repro.schemes import registry
from repro.schemes.radix import RadixScheme
from repro.sim import SimConfig, run_suite
from repro.sim.journal import RunJournal, config_fingerprint, spec_key
from repro.sim.parallel import make_specs
from repro.sim.results import RunFailure, SimResult
from repro.sim.supervisor import (
    SupervisorPolicy,
    SweepSupervisor,
    run_specs_supervised,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "scheme_cells.json"
REFS = 1_000
SRC_DIR = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(autouse=True)
def _allow_oversubscription(monkeypatch):
    """Supervisor chaos needs a real worker pool regardless of how few
    CPUs the CI box has: a KamikazeScheme that silently fell back to
    the serial path would SIGKILL the test process itself."""
    monkeypatch.setenv("REPRO_OVERSUBSCRIBE", "1")


# -- chaos schemes: defined here, registered for this module only -------

class KamikazeScheme(RadixScheme):
    """Radix clone that SIGKILLs its worker the first time any process
    tries to build it, then behaves exactly like radix.  The sentinel
    file is what makes "first time" survive the process boundary."""

    name = "kamikaze"
    aliases = ()
    core = False
    sentinel: Path = None  # set by the fixture

    def make_page_table(self, sim):
        if not self.sentinel.exists():
            self.sentinel.write_text("died once")
            os.kill(os.getpid(), signal.SIGKILL)
        return super().make_page_table(sim)


class SleeperScheme(RadixScheme):
    """Radix clone that hangs long past any test deadline."""

    name = "sleeper"
    aliases = ()
    core = False

    def make_page_table(self, sim):
        time.sleep(300)
        return super().make_page_table(sim)  # pragma: no cover


@pytest.fixture(scope="module", autouse=True)
def _chaos_schemes(tmp_path_factory):
    KamikazeScheme.sentinel = tmp_path_factory.mktemp("chaos") / "died-once"
    kamikaze = registry.register(KamikazeScheme())
    sleeper = registry.register(SleeperScheme())
    yield
    registry.unregister(kamikaze.name)
    registry.unregister(sleeper.name)


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


# -- worker supervision -------------------------------------------------

class TestWorkerKill:
    @pytest.mark.timeout(180)
    def test_killed_worker_is_retried_bit_identically(self):
        """A SIGKILLed worker breaks the pool; the supervisor respawns
        it and retries — the sweep ends with every cell present
        exactly once, field-for-field equal to a serial run."""
        cfg = SimConfig(num_refs=REFS)
        assert not KamikazeScheme.sentinel.exists()
        parallel = run_suite(
            ["gups"], ["radix", "kamikaze"], config=cfg, jobs=2,
            on_error="collect",
        )
        assert KamikazeScheme.sentinel.exists(), "worker never died"
        # The sentinel now exists, so a serial run survives.
        serial = run_suite(
            ["gups"], ["radix", "kamikaze"], config=cfg, jobs=1,
            on_error="collect",
        )
        assert not parallel.failures and not serial.failures
        assert len(parallel.results) == len(serial.results) == 4
        for a, b in zip(serial.results, parallel.results):
            assert asdict(a) == asdict(b)
        cells = [(r.workload, r.scheme, r.thp) for r in parallel.results]
        assert len(cells) == len(set(cells)), "duplicated cells"

    @pytest.mark.timeout(180)
    def test_timed_out_spec_is_quarantined_with_attempt_count(self):
        """A hung run exceeds its parent-side deadline twice (retries=1)
        and lands in ``failures`` as a SpecQuarantinedError naming the
        attempt count; the healthy cell still completes."""
        cfg = SimConfig(num_refs=300)
        results = run_suite(
            ["gups"], ["radix", "sleeper"], page_modes=(False,),
            config=cfg, jobs=2, on_error="collect",
            run_timeout=6.0, retries=1,
        )
        assert [r.scheme for r in results.results] == ["radix"]
        assert len(results.failures) == 1
        failure = results.failures[0]
        assert failure.scheme == "sleeper"
        assert failure.error == "SpecQuarantinedError"
        assert "2 attempts" in failure.message
        assert "SpecTimeoutError" in failure.message

    @pytest.mark.timeout(60)
    def test_quarantine_raises_under_fail_fast(self):
        cfg = SimConfig(num_refs=300)
        with pytest.raises(SpecQuarantinedError, match="1 attempts"):
            run_suite(
                ["gups"], ["sleeper"], page_modes=(False,), config=cfg,
                jobs=1, on_error="raise", run_timeout=2.0, retries=0,
            )

    @pytest.mark.timeout(120)
    def test_timed_out_worker_dumps_stack_before_kill(self, tmp_path):
        """Before killing a worker that blew its deadline, the parent
        sends SIGUSR1; the faulthandler hook every worker registers at
        init dumps its stack to stderr, so the hang site (here:
        ``time.sleep``) is visible post-mortem.  Run in a subprocess —
        the dump comes from a pool worker's stderr, which pytest's
        capture cannot see."""
        script = (
            "import time\n"
            "from repro.schemes import registry\n"
            "from repro.schemes.radix import RadixScheme\n"
            "class Napper(RadixScheme):\n"
            "    name = 'napper'\n"
            "    aliases = ()\n"
            "    core = False\n"
            "    def make_page_table(self, sim):\n"
            "        time.sleep(300)\n"
            "from repro.sim import SimConfig, run_suite\n"
            "registry.register(Napper())\n"
            "results = run_suite(['gups'], ['napper'], page_modes=(False,),\n"
            "                    config=SimConfig(num_refs=300), jobs=1,\n"
            "                    on_error='collect', run_timeout=2.0,\n"
            "                    retries=0)\n"
            "assert len(results.failures) == 1\n"
        )
        env = dict(os.environ, REPRO_OVERSUBSCRIBE="1")
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(SRC_DIR), env.get("PYTHONPATH")])
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, timeout=90,
            capture_output=True, text=True, cwd=tmp_path,
        )
        assert proc.returncode == 0, proc.stderr
        assert "most recent call first" in proc.stderr, proc.stderr
        # The dump names the frame the worker was wedged in.
        assert "make_page_table" in proc.stderr, proc.stderr


class TestGracefulShutdown:
    def test_pre_signalled_supervisor_raises_sweep_interrupted(self, tmp_path):
        """The drain path: with a stop already requested, the
        supervisor submits nothing, flushes what it has, and raises
        SweepInterrupted carrying the journal path and progress."""
        cfg = SimConfig(num_refs=REFS)
        journal_path = tmp_path / "j.jsonl"
        # Pre-complete one cell so `completed` is non-zero.
        run_suite(
            ["gups"], ["radix"], page_modes=(False,), config=cfg,
            journal=journal_path,
        )
        specs = make_specs(["gups"], ["radix", "lvm"], [False], cfg)
        journal = RunJournal.open(journal_path, cfg, resume=True)
        try:
            supervisor = SweepSupervisor(specs, jobs=2, journal=journal)
            supervisor._stop_signals = 1
            with pytest.raises(SweepInterrupted) as excinfo:
                supervisor.run()
        finally:
            journal.close()
        assert excinfo.value.journal_path == journal_path
        assert excinfo.value.completed == 1
        assert excinfo.value.total == 2

    def test_policy_validation(self):
        with pytest.raises(ConfigError, match="run_timeout"):
            SupervisorPolicy(run_timeout=0).validate()
        with pytest.raises(ConfigError, match="retries"):
            SupervisorPolicy(retries=-1).validate()
        with pytest.raises(ConfigError, match="backoff_factor"):
            SupervisorPolicy(backoff_factor=0.5).validate()
        policy = SupervisorPolicy(backoff_base=0.5, backoff_factor=2.0,
                                  backoff_max=3.0)
        assert policy.backoff(1) == 0.5
        assert policy.backoff(2) == 1.0
        assert policy.backoff(10) == 3.0  # capped
        assert policy.max_attempts == 3

    def test_supervisor_rejects_bad_arguments(self):
        with pytest.raises(ConfigError, match="jobs"):
            run_specs_supervised([], jobs=0)
        with pytest.raises(ConfigError, match="on_error"):
            run_specs_supervised([], jobs=1, on_error="ignore")


# -- the run journal ----------------------------------------------------

class TestJournal:
    def test_records_survive_roundtrip(self, tmp_path):
        cfg = SimConfig(num_refs=123)
        path = tmp_path / "j.jsonl"
        result = SimResult("gups", "radix", False, refs=1, instructions=2,
                           cycles=3.5)
        failure = RunFailure("gups", "lvm", True, "ReproError", "boom")
        with RunJournal.open(path, cfg) as journal:
            journal.record_result("gups", "radix", False, result)
            journal.record_failure("gups", "lvm", True, failure)
        reloaded = RunJournal.open(path, cfg, resume=True)
        try:
            assert asdict(reloaded.result_for("gups", "radix", False)) == \
                asdict(result)
            assert reloaded.failure_for("gups", "lvm", True) == failure
            assert reloaded.result_for("gups", "radix", True) is None
        finally:
            reloaded.close()

    def test_every_line_is_checksummed_json(self, tmp_path):
        cfg = SimConfig(num_refs=123)
        path = tmp_path / "j.jsonl"
        with RunJournal.open(path, cfg) as journal:
            journal.record_result(
                "gups", "radix", False,
                SimResult("gups", "radix", False, 1, 2, 3.0),
            )
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + one record
        for line in lines:
            wrapper = json.loads(line)
            assert set(wrapper) == {"record", "sha256"}
        assert json.loads(lines[0])["record"]["kind"] == "header"

    def test_torn_final_record_is_dropped(self, tmp_path, capsys):
        cfg = SimConfig(num_refs=123)
        path = tmp_path / "j.jsonl"
        with RunJournal.open(path, cfg) as journal:
            for scheme in ("radix", "lvm"):
                journal.record_result(
                    "gups", scheme, False,
                    SimResult("gups", scheme, False, 1, 2, 3.0),
                )
        raw = path.read_bytes()
        path.write_bytes(raw[:-30])  # tear the lvm record mid-line
        reloaded = RunJournal.open(path, cfg, resume=True)
        try:
            assert reloaded.result_for("gups", "radix", False) is not None
            assert reloaded.result_for("gups", "lvm", False) is None
        finally:
            reloaded.close()
        assert "torn or corrupt" in capsys.readouterr().err

    def test_corrupt_checksum_stops_the_load(self, tmp_path):
        cfg = SimConfig(num_refs=123)
        path = tmp_path / "j.jsonl"
        with RunJournal.open(path, cfg) as journal:
            for scheme in ("radix", "lvm"):
                journal.record_result(
                    "gups", scheme, False,
                    SimResult("gups", scheme, False, 1, 2, 3.0),
                )
        lines = path.read_text().splitlines()
        # Flip a digit inside the radix record's payload without
        # updating its checksum: both it and the (valid) record after
        # it must be discarded — data past corruption is suspect.
        lines[1] = lines[1].replace('"refs": 1', '"refs": 9')
        path.write_text("\n".join(lines) + "\n")
        reloaded = RunJournal.open(path, cfg, resume=True)
        try:
            assert reloaded.completed == {}
        finally:
            reloaded.close()

    def test_mismatched_config_is_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        RunJournal.open(path, SimConfig(num_refs=100)).close()
        with pytest.raises(JournalMismatchError, match="different config"):
            RunJournal.open(path, SimConfig(num_refs=200), resume=True)

    def test_mismatched_schema_version_is_rejected(self, tmp_path):
        from repro.sim import journal as journal_module

        path = tmp_path / "j.jsonl"
        record = {"kind": "header", "version": 99, "fingerprint": "x"}
        path.write_text(json.dumps(
            {"record": record, "sha256": journal_module._digest(record)}
        ) + "\n")
        with pytest.raises(JournalMismatchError, match="schema version"):
            RunJournal.open(path, SimConfig(num_refs=100), resume=True)

    def test_resume_without_existing_journal_is_config_error(self, tmp_path):
        """--resume against a journal that does not exist is a user
        mistake (wrong path, or nothing to resume), not a fresh start:
        it must fail with a ConfigError (exit 2) naming the path —
        distinct from JournalMismatchError, which means the journal
        exists but belongs to a different configuration."""
        path = tmp_path / "missing.jsonl"
        with pytest.raises(ConfigError, match="nothing to resume"):
            RunJournal.open(path, SimConfig(num_refs=100), resume=True)
        assert not path.exists()
        # Without --resume the same path starts a fresh journal.
        journal = RunJournal.open(path, SimConfig(num_refs=100))
        try:
            assert journal.completed == {} and journal.failed == {}
            assert path.exists()
        finally:
            journal.close()

    def test_fingerprint_ignores_thp_but_not_refs(self):
        base = SimConfig(num_refs=100)
        assert config_fingerprint(base) == \
            config_fingerprint(base.clone(thp=True))
        assert config_fingerprint(base) != \
            config_fingerprint(base.clone(num_refs=101))

    def test_spec_key_shape(self):
        assert spec_key("gups", "radix", True) == "gups/radix/thp=1"


# -- crash-safe resume --------------------------------------------------

class TestResume:
    SCHEMES = ("radix", "ecpt", "lvm")

    @pytest.mark.timeout(300)
    def test_torn_journal_resumes_to_golden_cells(self, golden, tmp_path):
        """Sweep → tear the journal mid-record → resume.  The resumed
        ResultSet must match the pre-refactor golden cells bit for bit
        (the acceptance criterion: resume is indistinguishable from an
        uninterrupted run)."""
        cfg = SimConfig(num_refs=golden["refs"])
        path = tmp_path / "sweep.jsonl"
        first = run_suite(
            [golden["workload"]], self.SCHEMES, config=cfg, jobs=2,
            journal=path,
        )
        assert len(first.results) == len(self.SCHEMES) * 2
        raw = path.read_bytes()
        path.write_bytes(raw[:-40])  # torn write in the final record
        resumed = run_suite(
            [golden["workload"]], self.SCHEMES, config=cfg, jobs=2,
            journal=path, resume=True,
        )
        assert not resumed.failures
        by_cell = {
            (rec["scheme"], rec["thp"]): rec for rec in golden["results"]
        }
        assert len(resumed.results) == len(self.SCHEMES) * 2
        for run in resumed.results:
            assert asdict(run) == by_cell[(run.scheme, run.thp)], (
                run.scheme, run.thp,
            )

    def test_serial_resume_skips_journaled_cells(self, tmp_path):
        """A fully-journaled serial sweep re-runs nothing: the resumed
        set replays the journal bit-identically, fast."""
        cfg = SimConfig(num_refs=REFS)
        path = tmp_path / "serial.jsonl"
        first = run_suite(["gups"], ["radix", "lvm"], config=cfg,
                          journal=path)
        start = time.perf_counter()
        resumed = run_suite(["gups"], ["radix", "lvm"], config=cfg,
                            journal=path, resume=True)
        replay_seconds = time.perf_counter() - start
        for a, b in zip(first.results, resumed.results):
            assert asdict(a) == asdict(b)
        # Replay does no simulation; give CI two orders of margin.
        assert replay_seconds < 5.0

    def test_resume_requires_journal(self):
        with pytest.raises(ConfigError, match="journal"):
            run_suite(["gups"], ["radix"], config=SimConfig(num_refs=100),
                      resume=True)

    def test_truncation_at_every_byte_offset_of_last_record(self, tmp_path):
        """Exhaustive torn-tail sweep at the journal layer: truncating
        the file at *every* byte offset inside the last record must
        load cleanly with exactly the preceding cells intact — the torn
        record is dropped whole, never half-parsed, never taking the
        records before it down with it."""
        cfg = SimConfig(num_refs=REFS)
        path = tmp_path / "sweep.jsonl"
        run_suite(["gups"], ["radix", "lvm"], page_modes=(False,),
                  config=cfg, journal=path)
        raw = path.read_bytes()
        last_line_start = raw[:-1].rfind(b"\n") + 1
        torn = tmp_path / "torn.jsonl"
        for offset in range(last_line_start, len(raw) + 1):
            torn.write_bytes(raw[:offset])
            journal = RunJournal.open(torn, cfg, resume=True)
            try:
                keys = set(journal.completed)
                # Only the byte-complete record survives (the trailing
                # newline is not needed for the final line to parse).
                if offset >= len(raw) - 1:
                    assert keys == {"gups/radix/thp=0", "gups/lvm/thp=0"}
                else:
                    assert keys == {"gups/radix/thp=0"}, offset
                assert not journal.failed
            finally:
                journal.close()

    @given(cut=st.integers(min_value=1, max_value=4096))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_torn_tail_resumes_bit_identically(self, tmp_path, cut):
        """Property: for any truncation point inside the last record,
        a resumed sweep is bit-identical to the uninterrupted one."""
        cfg = SimConfig(num_refs=REFS)
        path = tmp_path / "sweep.jsonl"
        first = run_suite(["gups"], ["radix", "lvm"], page_modes=(False,),
                          config=cfg, journal=path)
        raw = path.read_bytes()
        last_len = len(raw) - (raw[:-1].rfind(b"\n") + 1)
        offset = len(raw) - 1 - (cut % (last_len - 1)) - 1
        path.write_bytes(raw[:offset])
        resumed = run_suite(["gups"], ["radix", "lvm"], page_modes=(False,),
                            config=cfg, journal=path, resume=True)
        assert not resumed.failures
        assert [asdict(r) for r in resumed.results] == \
            [asdict(r) for r in first.results]

    def test_stale_journal_exits_2_through_cli(self, tmp_path):
        path = tmp_path / "stale.jsonl"
        run_suite(["gups"], ["radix"], page_modes=(False,),
                  config=SimConfig(num_refs=200), journal=path)
        code = cli_main([
            "fig9", "--refs", "300", "--workloads", "gups",
            "--schemes", "radix,lvm", "--journal", str(path), "--resume",
        ])
        assert code == 2
