"""Property-based tests for the Q44.20 fixed-point format.

Uses hypothesis to check the algebraic contracts the learned-index
walker depends on: encode/decode round trips, floor semantics,
saturation at the format limits, and the free-function fast path
(``linear_predict``) agreeing with the object arithmetic.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.fixed_point import (  # noqa: E402
    FRACTION_BITS,
    MAX_INT,
    MAX_RAW,
    MIN_INT,
    MIN_RAW,
    SCALE,
    FixedPoint,
    FixedPointOverflow,
    from_float_saturating,
    linear_predict,
    quantize,
    quantize_saturating,
    saturate_raw,
)

raw_values = st.integers(min_value=MIN_RAW, max_value=MAX_RAW)
int_values = st.integers(min_value=MIN_INT, max_value=MAX_INT)
# Floats that stay far enough inside the format that rounding cannot
# push them over the edge.
safe_floats = st.floats(
    min_value=-(2.0 ** 40), max_value=2.0 ** 40,
    allow_nan=False, allow_infinity=False,
)


class TestRoundTrips:
    @given(raw_values)
    def test_raw_round_trip(self, raw):
        assert FixedPoint.from_raw(raw).raw == raw

    @given(int_values)
    def test_int_round_trip(self, value):
        fp = FixedPoint.from_int(value)
        assert fp.floor() == value
        assert fp.to_float() == float(value)

    @given(safe_floats)
    def test_float_round_trip_within_quantum(self, value):
        fp = FixedPoint.from_float(value)
        # Quantization error is at most half a fractional step.
        assert abs(fp.to_float() - value) <= 0.5 / SCALE

    @given(safe_floats)
    def test_quantize_matches_constructor(self, value):
        assert quantize(value) == FixedPoint.from_float(value).raw

    @given(raw_values)
    def test_floor_is_arithmetic_shift(self, raw):
        assert FixedPoint.from_raw(raw).floor() == raw >> FRACTION_BITS


class TestOverflow:
    @given(st.integers(min_value=MAX_RAW + 1, max_value=MAX_RAW * 4))
    def test_from_raw_rejects_above(self, raw):
        with pytest.raises(FixedPointOverflow):
            FixedPoint.from_raw(raw)

    @given(st.integers(min_value=MIN_RAW * 4, max_value=MIN_RAW - 1))
    def test_from_raw_rejects_below(self, raw):
        with pytest.raises(FixedPointOverflow):
            FixedPoint.from_raw(raw)

    def test_exact_bounds_accepted(self):
        assert FixedPoint.from_raw(MAX_RAW).raw == MAX_RAW
        assert FixedPoint.from_raw(MIN_RAW).raw == MIN_RAW
        assert FixedPoint.from_int(MAX_INT).floor() == MAX_INT
        assert FixedPoint.from_int(MIN_INT).floor() == MIN_INT

    @given(st.integers(min_value=MIN_RAW * 8, max_value=MAX_RAW * 8))
    def test_saturate_raw_clamps(self, raw):
        sat = saturate_raw(raw)
        assert MIN_RAW <= sat <= MAX_RAW
        if MIN_RAW <= raw <= MAX_RAW:
            assert sat == raw
        else:
            assert sat in (MIN_RAW, MAX_RAW)

    @given(st.floats(min_value=-(2.0 ** 60), max_value=2.0 ** 60,
                     allow_nan=False, allow_infinity=False))
    def test_quantize_saturating_never_raises(self, value):
        raw = quantize_saturating(value)
        assert MIN_RAW <= raw <= MAX_RAW
        assert from_float_saturating(value).raw == raw

    @given(safe_floats)
    def test_saturating_agrees_in_range(self, value):
        assert quantize_saturating(value) == quantize(value)


class TestArithmetic:
    @given(raw_values, raw_values)
    def test_add_sub_inverse(self, a, b):
        fa, fb = FixedPoint.from_raw(a), FixedPoint.from_raw(b)
        try:
            total = fa + fb
        except FixedPointOverflow:
            assert not MIN_RAW <= a + b <= MAX_RAW
            return
        assert (total - fb).raw == a

    @given(
        st.integers(min_value=-(1 << 31), max_value=1 << 31),
        st.integers(min_value=-(1 << 31), max_value=1 << 31),
        st.integers(min_value=0, max_value=(1 << 30)),
    )
    @settings(max_examples=50)
    def test_linear_predict_matches_object_path(self, slope, intercept, x):
        predicted = linear_predict(slope, intercept, x)
        fp = FixedPoint.from_raw(slope).mul_int(x) + FixedPoint.from_raw(intercept)
        assert predicted == fp.floor()


class TestDeterminism:
    """Identical seeds must reproduce identical results (ISSUE criteria)."""

    def test_same_workload_seed_same_resultset(self):
        from repro.sim import SimConfig, run_suite

        def one_run():
            config = SimConfig(num_refs=2_000, workload_seed=7)
            rs = run_suite(
                workload_names=["gups"], schemes=("lvm",),
                page_modes=(False,), config=config,
            )
            r = rs.results[0]
            return (r.cycles, r.mmu_cycles, r.walk_traffic, r.index_size_bytes)

        assert one_run() == one_run()

    def test_same_fault_seed_same_injections(self):
        from repro.faults import FaultKind, FaultPlan
        from repro.sim import SimConfig, run_suite

        def one_run():
            plan = FaultPlan.single(FaultKind.MODEL_PERTURB, rate=5e-3, seed=3)
            config = SimConfig(num_refs=2_000, faults=plan)
            rs = run_suite(
                workload_names=["gups"], schemes=("lvm",),
                page_modes=(False,), config=config,
            )
            r = rs.results[0]
            return (r.cycles, r.faults_injected, r.recoveries,
                    r.recovery_cycles)

        first, second = one_run(), one_run()
        assert first == second
        assert first[1] > 0  # the plan actually fired
