"""Tests for the simulator, runner, results, and multicore layers."""

import dataclasses

import pytest

from repro.sim import (
    SCHEMES,
    ResultSet,
    SimConfig,
    SimResult,
    Simulator,
    geomean,
    mean,
    run_suite,
    table1_rows,
)
from repro.sim.multicore import MultiTenantSimulator, MultiThreadedSimulator
from repro.workloads import build_workload

REFS = 4000


@pytest.fixture(scope="module")
def gups():
    return build_workload("gups")


class TestSimulator:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_schemes_run(self, gups, scheme):
        result = Simulator(scheme, gups, SimConfig(num_refs=REFS)).run()
        assert result.refs == REFS
        assert result.cycles > 0
        assert result.walks > 0
        assert result.walk_traffic >= result.walks * 0 + 1

    def test_extended_schemes_run(self, gups):
        for scheme in ("fpt", "asap", "midgard"):
            result = Simulator(scheme, gups, SimConfig(num_refs=REFS)).run()
            assert result.cycles > 0

    def test_thp_reduces_walks(self, gups):
        four_k = Simulator("radix", gups, SimConfig(num_refs=REFS)).run()
        thp = Simulator(
            "radix", gups, SimConfig(num_refs=REFS, thp=True)
        ).run()
        assert thp.walks < four_k.walks

    def test_lvm_traffic_below_radix(self, gups):
        radix = Simulator("radix", gups, SimConfig(num_refs=REFS)).run()
        lvm = Simulator("lvm", gups, SimConfig(num_refs=REFS)).run()
        assert lvm.walk_traffic < radix.walk_traffic
        assert lvm.index_size_bytes > 0
        assert lvm.walk_cache_hit_rate > 0.9

    def test_ecpt_traffic_above_radix(self, gups):
        radix = Simulator("radix", gups, SimConfig(num_refs=REFS)).run()
        ecpt = Simulator("ecpt", gups, SimConfig(num_refs=REFS)).run()
        assert ecpt.walk_traffic > radix.walk_traffic

    def test_deterministic(self, gups):
        a = Simulator("lvm", gups, SimConfig(num_refs=REFS)).run()
        b = Simulator("lvm", gups, SimConfig(num_refs=REFS)).run()
        assert a.cycles == b.cycles
        assert a.walk_traffic == b.walk_traffic

    def test_unknown_scheme_rejected(self, gups):
        with pytest.raises(ValueError):
            Simulator("nope", gups, SimConfig(num_refs=REFS))

    def test_config_clone(self):
        cfg = SimConfig(num_refs=REFS)
        thp = cfg.clone(thp=True)
        assert thp.thp and not cfg.thp
        with pytest.raises(AttributeError):
            cfg.clone(bogus=1)

    def test_table1_renders(self):
        rows = table1_rows()
        assert any("LVM" in name for name, _ in rows)


class TestResultSet:
    def make(self):
        rs = ResultSet()
        for scheme, cycles, mmu, traffic in (
            ("radix", 100.0, 50, 10), ("lvm", 80.0, 30, 5),
        ):
            rs.add(SimResult(
                workload="w", scheme=scheme, thp=False, refs=1,
                instructions=1, cycles=cycles, mmu_cycles=mmu,
                walk_traffic=traffic, l2_mpki=2.0, l3_mpki=1.0,
            ))
        return rs

    def test_speedup(self):
        rs = self.make()
        assert rs.speedup("w", "lvm", False) == pytest.approx(1.25)

    def test_relative_metrics(self):
        rs = self.make()
        assert rs.mmu_overhead_relative("w", "lvm", False) == pytest.approx(0.6)
        assert rs.walk_traffic_relative("w", "lvm", False) == pytest.approx(0.5)
        assert rs.mpki_relative("w", "lvm", False, "l2") == pytest.approx(1.0)

    def test_missing_run_raises(self):
        rs = self.make()
        with pytest.raises(KeyError):
            rs.get("w", "ideal", False)

    def test_aggregates(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert mean([1.0, 3.0]) == 2.0
        assert geomean([]) == 0.0


class TestRunner:
    def test_small_suite(self):
        rs = run_suite(
            workload_names=["gups"],
            schemes=("radix", "lvm"),
            page_modes=(False,),
            config=SimConfig(num_refs=2000),
        )
        assert len(rs.results) == 2
        assert rs.speedup("gups", "lvm", False) > 0


class TestMulticore:
    def test_multitenant_runs(self, gups):
        bfs = build_workload("dc")
        sims = MultiTenantSimulator(
            "lvm", [gups, bfs], SimConfig(num_refs=2000)
        )
        results = sims.run()
        assert len(results) == 2
        assert all(r.cycles > 0 for r in results)

    def test_multithreaded_runs(self, gups):
        sim = MultiThreadedSimulator(
            "lvm", gups, num_threads=4, config=SimConfig(num_refs=2000)
        )
        out = sim.run()
        assert out["max_thread_cycles"] > 0
        assert 0.0 <= out["lock_conflict_rate"] <= 1.0
