"""Trace compiler (`repro.workloads.compile`) and content-addressed
trace cache (`repro.workloads.trace_cache`).

The properties pinned here:

* the packed-trace pipeline is **bit-identical** to the legacy
  per-object path across all 7 registered schemes, against the same
  golden cells the scheme-registry refactor froze;
* a cached entry is verified before it is trusted: truncation, a
  flipped byte, a torn sidecar or a missing payload all invalidate the
  entry and rebuild from source — never a wrong trace;
* a ``GENERATOR_VERSION`` bump changes every cache key, so stale
  entries can only be orphaned, not returned;
* the cache knobs never leak into the journal's config fingerprint
  (a sweep journaled with the cache on resumes with it off).
"""

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np
import pytest

from repro.sim import SimConfig, Simulator
from repro.sim.journal import config_fingerprint
from repro.workloads.compile import (
    TRACE_DTYPE,
    CompiledTrace,
    compiled_trace_for,
    pack_trace,
    spec_digest,
    trace_spec,
)
from repro.workloads.registry import build_workload
from repro.workloads.trace_cache import TraceCache, cache_for_config

GOLDEN_PATH = Path(__file__).parent / "golden" / "scheme_cells.json"
REFS = 500
TRACE_SEED = 1


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def gups():
    return build_workload("gups")


def _spec(num_refs=REFS, trace_seed=TRACE_SEED):
    return trace_spec("gups", 64, 0, num_refs, trace_seed)


def _packed(gups, num_refs=REFS, trace_seed=TRACE_SEED):
    return pack_trace(gups.trace(num_refs, trace_seed), kind_code=1)


# -- bit-identity through the packed pipeline ---------------------------

class TestPackedBitIdentity:
    def test_packed_and_legacy_match_golden_all_schemes(self, golden, gups):
        """Every registered scheme, both page modes: the legacy raw
        loop and the packed fast loop both reproduce the golden cells
        exactly — so they are bit-identical to each other too."""
        assert golden["workload"] == "gups"
        for rec in golden["results"]:
            legacy = Simulator(
                rec["scheme"], gups,
                SimConfig(
                    num_refs=golden["refs"], thp=rec["thp"],
                    packed_traces=False,
                ),
            ).run()
            assert asdict(legacy) == rec, ("legacy", rec["scheme"], rec["thp"])
            packed = Simulator(
                rec["scheme"], gups,
                SimConfig(num_refs=golden["refs"], thp=rec["thp"]),
            ).run()
            assert asdict(packed) == rec, ("packed", rec["scheme"], rec["thp"])

    def test_column_views_match_raw_trace(self, gups):
        raw = gups.trace(REFS, TRACE_SEED)
        compiled = CompiledTrace(_packed(gups), _spec())
        assert compiled.vas == raw.tolist()
        assert compiled.vpns == [va >> 12 for va in raw.tolist()]
        assert len(compiled) == len(raw)


class TestPackTrace:
    def test_layout(self, gups):
        raw = gups.trace(REFS, TRACE_SEED)
        packed = _packed(gups)
        assert packed.dtype == TRACE_DTYPE
        assert (packed["va"] == raw).all()
        assert (packed["vpn"] == raw >> 12).all()
        assert (packed["kind"] == 1).all()
        assert packed["stride"][0] == 0
        assert (packed["stride"][1:] == np.diff(raw)).all()
        assert not packed.flags.writeable

    def test_spec_digest_is_input_sensitive(self):
        base = spec_digest(_spec())
        assert spec_digest(_spec(num_refs=REFS + 1)) != base
        assert spec_digest(_spec(trace_seed=2)) != base
        assert spec_digest(trace_spec("gups", 32, 0, REFS, TRACE_SEED)) != base
        assert spec_digest(_spec()) == base  # deterministic


# -- the cache: hits, corruption, invalidation --------------------------

class TestCacheRoundTrip:
    def test_store_then_memmap_hit(self, tmp_path, gups):
        cache = TraceCache(tmp_path)
        stored = cache.load_or_build(_spec(), lambda: _packed(gups))
        assert stored.source == "built"
        assert cache.builds == 1 and cache.hits == 0

        fresh = TraceCache(tmp_path)
        hit = fresh.get(_spec())
        assert hit is not None and hit.source == "cache"
        assert fresh.hits == 1 and fresh.invalidated == 0
        assert isinstance(hit.packed, np.memmap)
        assert not hit.packed.flags.writeable
        assert hit.vas == stored.vas
        assert (np.asarray(hit.packed) == stored.packed).all()

    def test_compiled_trace_for_memoizes_per_workload(self, tmp_path):
        cache = TraceCache(tmp_path)
        w = build_workload("gups")
        first = compiled_trace_for(w, REFS, TRACE_SEED, cache)
        again = compiled_trace_for(w, REFS, TRACE_SEED, cache)
        assert first is again  # the 8 cells of a sweep share one trace
        assert cache.builds == 1 and cache.hits == 0

    def test_hand_built_workload_skips_disk(self, tmp_path, gups):
        """A workload without build identity (scale/seed None) still
        compiles, but must not key into the shared cache."""
        from repro.workloads.registry import BuiltWorkload

        anon = BuiltWorkload(gups.info, gups.space, gups.trace_fn)
        cache = TraceCache(tmp_path)
        compiled = compiled_trace_for(anon, REFS, TRACE_SEED, cache)
        assert compiled.vas == gups.trace(REFS, TRACE_SEED).tolist()
        assert cache.builds == 0 and not list(tmp_path.iterdir())


class TestCacheCorruption:
    """A damaged entry is rebuilt, never trusted."""

    def _seed_entry(self, tmp_path, gups):
        cache = TraceCache(tmp_path)
        cache.load_or_build(_spec(), lambda: _packed(gups))
        digest = spec_digest(_spec())
        return tmp_path / f"{digest}.npy", tmp_path / f"{digest}.json"

    def _assert_rebuilt(self, tmp_path, gups):
        cache = TraceCache(tmp_path)
        assert cache.get(_spec()) is None
        assert cache.invalidated == 1
        rebuilt = cache.load_or_build(_spec(), lambda: _packed(gups))
        assert cache.builds == 1
        assert rebuilt.vas == gups.trace(REFS, TRACE_SEED).tolist()
        # The rebuilt entry is whole again.
        assert TraceCache(tmp_path).get(_spec()) is not None

    def test_truncated_payload(self, tmp_path, gups):
        npy_path, _ = self._seed_entry(tmp_path, gups)
        npy_path.write_bytes(npy_path.read_bytes()[:100])
        self._assert_rebuilt(tmp_path, gups)

    def test_flipped_byte(self, tmp_path, gups):
        npy_path, _ = self._seed_entry(tmp_path, gups)
        blob = bytearray(npy_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        npy_path.write_bytes(bytes(blob))
        self._assert_rebuilt(tmp_path, gups)

    def test_torn_sidecar(self, tmp_path, gups):
        _, meta_path = self._seed_entry(tmp_path, gups)
        meta_path.write_text(meta_path.read_text()[:20])
        self._assert_rebuilt(tmp_path, gups)

    def test_missing_payload_is_a_plain_miss(self, tmp_path, gups):
        """A sidecar whose payload is gone looks exactly like a
        concurrent gc caught between its two unlinks: a miss to
        rebuild, not corruption to count and clean up."""
        npy_path, meta_path = self._seed_entry(tmp_path, gups)
        npy_path.unlink()
        cache = TraceCache(tmp_path)
        assert cache.get(_spec()) is None
        assert cache.invalidated == 0
        rebuilt = cache.load_or_build(_spec(), lambda: _packed(gups))
        assert rebuilt.vas == gups.trace(REFS, TRACE_SEED).tolist()
        assert npy_path.exists() and meta_path.exists()
        assert TraceCache(tmp_path).get(_spec()) is not None

    def test_corrupt_entry_files_are_deleted(self, tmp_path, gups):
        npy_path, meta_path = self._seed_entry(tmp_path, gups)
        npy_path.write_bytes(b"garbage")
        assert TraceCache(tmp_path).get(_spec()) is None
        assert not npy_path.exists() and not meta_path.exists()


class TestVersionInvalidation:
    def test_generator_bump_changes_every_key(self, tmp_path, gups, monkeypatch):
        cache = TraceCache(tmp_path)
        cache.load_or_build(_spec(), lambda: _packed(gups))

        import repro.workloads.compile as compile_mod

        monkeypatch.setattr(compile_mod, "GENERATOR_VERSION", 2)
        bumped = TraceCache(tmp_path)
        assert bumped.get(_spec()) is None  # new key: a miss, not corruption
        assert bumped.invalidated == 0
        bumped.load_or_build(_spec(), lambda: _packed(gups))
        # Both generations coexist until gc; nothing was overwritten.
        assert len(bumped.entries()) == 2

    def test_gc_reclaims_everything(self, tmp_path, gups):
        cache = TraceCache(tmp_path)
        cache.load_or_build(_spec(), lambda: _packed(gups))
        cache.load_or_build(_spec(trace_seed=2), lambda: _packed(gups, trace_seed=2))
        assert len(cache.entries()) == 2
        stats = cache.gc()
        assert stats["entries"] == 2 and stats["bytes"] > 0
        assert not list(tmp_path.iterdir())
        assert cache.entries() == []


class TestConcurrentGC:
    """gc racing another process's gc (or a sweep's invalidation):
    entries vanishing mid-scan are skipped, counts stay honest."""

    def _seed(self, tmp_path, gups, seeds=(1, 2, 3)):
        cache = TraceCache(tmp_path)
        for seed in seeds:
            cache.load_or_build(
                _spec(trace_seed=seed), lambda s=seed: _packed(gups, trace_seed=s)
            )
        return cache

    def test_gc_tolerates_entries_vanishing_mid_scan(
        self, tmp_path, gups, monkeypatch
    ):
        """The racing process wins one entry: our gc neither raises nor
        counts the stolen entry as its own removal."""
        cache = self._seed(tmp_path, gups)
        victim = spec_digest(_spec(trace_seed=2))
        real_unlink = Path.unlink

        def racing_unlink(self, *args, **kwargs):
            if self.stem == victim:
                # The other gc got here first: both files are gone by
                # the time ours tries.
                real_unlink(self.with_suffix(".json"))
                real_unlink(self.with_suffix(".npy"))
                raise FileNotFoundError(str(self))
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", racing_unlink)
        stats = cache.gc()
        assert stats["entries"] == 2  # the stolen entry is not ours
        assert stats["bytes"] > 0
        assert not list(tmp_path.iterdir())

    def test_gc_tolerates_directory_vanishing_mid_scan(
        self, tmp_path, gups, monkeypatch
    ):
        """root removed between is_dir() and the glob walk: an empty
        gc, not a FileNotFoundError."""
        import shutil

        cache = self._seed(tmp_path, gups)
        real_is_dir = Path.is_dir

        def vanishing_is_dir(self, *args, **kwargs):
            result = real_is_dir(self, *args, **kwargs)
            if result and self == tmp_path:
                shutil.rmtree(tmp_path)
            return result

        monkeypatch.setattr(Path, "is_dir", vanishing_is_dir)
        stats = cache.gc()
        assert stats == {"entries": 0, "bytes": 0}

    def test_get_during_concurrent_gc_is_a_miss(
        self, tmp_path, gups, monkeypatch
    ):
        """Sidecar visible, bytes gone by read time: a miss (the other
        process is cleaning up), never an exception or an
        invalidation."""
        cache = self._seed(tmp_path, gups, seeds=(1,))
        real_read = Path.read_text

        def vanishing_read(self, *args, **kwargs):
            if self.suffix == ".json":
                self.unlink()
                raise FileNotFoundError(str(self))
            return real_read(self, *args, **kwargs)

        monkeypatch.setattr(Path, "read_text", vanishing_read)
        probe = TraceCache(tmp_path)
        assert probe.get(_spec(trace_seed=1)) is None
        assert probe.invalidated == 0


# -- opt-outs and fingerprint discipline --------------------------------

class TestOptOuts:
    def test_config_opt_out_writes_nothing(self, tmp_path, gups):
        cfg = SimConfig(
            num_refs=REFS, use_trace_cache=False,
            trace_cache_dir=str(tmp_path),
        )
        assert cache_for_config(cfg) is None
        Simulator("radix", build_workload("gups"), cfg).run()
        assert not list(tmp_path.iterdir())

    def test_env_kill_switch(self, tmp_path, monkeypatch):
        cfg = SimConfig(num_refs=REFS, trace_cache_dir=str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_CACHE", "0")
        assert cache_for_config(cfg) is None
        monkeypatch.delenv("REPRO_TRACE_CACHE")
        assert cache_for_config(cfg) is not None

    def test_unwritable_cache_degrades_gracefully(self, tmp_path, gups):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        cache = TraceCache(blocker / "sub")
        compiled = cache.load_or_build(_spec(), lambda: _packed(gups))
        # The build still happened in memory; nothing exploded.
        assert compiled.vas == gups.trace(REFS, TRACE_SEED).tolist()


class TestFingerprintInvariance:
    def test_cache_knobs_do_not_change_the_fingerprint(self, tmp_path):
        base = config_fingerprint(SimConfig(num_refs=REFS))
        assert config_fingerprint(
            SimConfig(num_refs=REFS, use_trace_cache=False)
        ) == base
        assert config_fingerprint(
            SimConfig(num_refs=REFS, packed_traces=False)
        ) == base
        assert config_fingerprint(
            SimConfig(num_refs=REFS, trace_cache_dir=str(tmp_path))
        ) == base
        # ...while result-shaping fields still do.
        assert config_fingerprint(SimConfig(num_refs=REFS + 1)) != base
