"""The vectorized epoch engine (`repro.sim.vectorized`).

The engine's one hard contract is **bit-identity**: a run through the
epoch engine must produce the same counters, cycles and final TLB/cache
state as the scalar loops, for every scheme, page mode and epoch size.
That contract is pinned four ways:

* **Golden cells** — the engine (forced on via ``vectorized_min_fast=0``)
  reproduces every (scheme, thp) cell of the pre-engine golden file
  ``tests/golden/scheme_cells.json`` field-for-field.
* **Scalar cross-check** — engine-on and engine-off runs of the same
  configuration produce equal ``SimResult`` dicts, including on a
  hit-dominated (unscaled-geometry) run where the batch path actually
  dominates.
* **Property test** — hypothesis drives epoch size (1, odd sizes,
  powers of two, larger-than-trace) and the min-fast knob; every
  combination equals the scalar run.  ``epoch=1`` degenerates to the
  scalar loop one reference at a time.
* **Snapshot API** — the TLB membership version/log machinery the
  engine relies on (and ``MMU.packed_context``'s staleness handle)
  behaves as documented.
"""

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mmu.hierarchy import HierarchyConfig
from repro.mmu.mmu import MMU
from repro.mmu.tlb import TLBArray, TLBConfig
from repro.mmu.walker import IdealWalker
from repro.pagetables.ideal import IdealPageTable
from repro.serve.tenant import Tenant, TenantSpec
from repro.sim import SimConfig, Simulator
from repro.sim.vectorized import SERVE_BATCH_MIN, VectorizedEngine
from repro.types import PTE, PageSize
from repro.workloads import build_workload
from repro.workloads.registry import BuiltWorkload

GOLDEN_PATH = Path(__file__).parent / "golden" / "scheme_cells.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def gups():
    return build_workload("gups")


@pytest.fixture(scope="module")
def hot_loop(gups):
    """A hit-dominated workload: a cyclic 8-byte-stride loop over
    16 KB of gups's heap — the regime the batch path is built for."""
    base = int(gups.trace(16, 1)[0]) & ~0xFFF

    def trace_fn(num_refs, trace_seed):
        offsets = (np.arange(num_refs, dtype=np.int64) * 8) % (16 << 10)
        return base + offsets

    return BuiltWorkload(gups.info, gups.space, trace_fn)


def _run(scheme, workload, **overrides):
    cfg = SimConfig(**overrides)
    sim = Simulator(scheme, workload, cfg)
    return asdict(sim.run()), sim


# -- golden bit-identity ------------------------------------------------

class TestGoldenBitIdentity:
    def test_engine_matches_pre_engine_golden(self, golden, gups):
        """Every golden (scheme, thp) cell reproduces with the engine
        forced on (min_fast=0 batches every epoch it legally can)."""
        assert golden["workload"] == "gups"
        for rec in golden["results"]:
            cfg = SimConfig(
                num_refs=golden["refs"], thp=rec["thp"],
                vectorized_engine=True, vectorized_min_fast=0.0,
            )
            result = asdict(Simulator(rec["scheme"], gups, cfg).run())
            assert result == rec, (
                f"{rec['scheme']}/thp={rec['thp']} diverged under the "
                "vectorized engine"
            )


# -- scalar cross-checks ------------------------------------------------

class TestScalarEquivalence:
    @pytest.mark.parametrize("scheme", ["radix", "ideal", "lvm"])
    @pytest.mark.parametrize("thp", [False, True])
    def test_scaled_grid(self, gups, scheme, thp):
        scalar, _ = _run(scheme, gups, num_refs=4000, thp=thp,
                         vectorized_engine=False)
        vec, _ = _run(scheme, gups, num_refs=4000, thp=thp,
                      vectorized_engine=True, vectorized_min_fast=0.0)
        assert scalar == vec

    def test_hit_dominated_batches_and_matches(self, hot_loop):
        """On the hot loop the engine really engages (nearly every
        reference replays in batch) and stays bit-identical."""
        scalar, _ = _run("radix", hot_loop, num_refs=30_000,
                         hierarchy=HierarchyConfig(), tlb=TLBConfig(),
                         vectorized_engine=False)
        vec, sim = _run("radix", hot_loop, num_refs=30_000,
                        hierarchy=HierarchyConfig(), tlb=TLBConfig(),
                        vectorized_engine=True)
        assert scalar == vec
        stats = sim.vectorized_stats
        assert stats is not None
        assert stats["batched_refs"] > 20_000
        assert stats["batched_refs"] + stats["scalar_refs"] == 30_000

    def test_default_config_engages_engine(self, hot_loop):
        """The engine is default-on: a plain SimConfig routes a
        fault-free packed run through it."""
        _, sim = _run("radix", hot_loop, num_refs=2000)
        assert sim.vectorized_stats is not None

    def test_self_disables_for_faulty_and_verify_runs(self, gups):
        _, sim = _run("radix", gups, num_refs=500,
                      verify_translations=True)
        assert sim.vectorized_stats is None
        cfg = SimConfig(num_refs=500, vectorized_engine=False)
        sim = Simulator("radix", gups, cfg)
        sim.run()
        assert sim.vectorized_stats is None

    def test_try_build_rejects_l1_walker_entry(self, gups):
        cfg = SimConfig(num_refs=200)
        cfg.hierarchy.walker_entry = "l1"
        sim = Simulator("radix", gups, cfg)
        trace = sim._trace(200)
        assert VectorizedEngine.try_build(sim, trace) is None


# -- property test over epoch geometry ----------------------------------

@pytest.fixture(scope="module")
def scalar_reference(gups):
    result, _ = _run("radix", gups, num_refs=1500, vectorized_engine=False)
    return result


@settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    epoch=st.one_of(
        st.just(1), st.just(2), st.just(4096), st.just(5000),
        st.integers(min_value=1, max_value=700).filter(lambda e: e % 2 == 1),
    ),
    min_fast=st.sampled_from([0.0, 0.55, 1.0]),
)
def test_epoch_geometry_is_result_invariant(gups, scalar_reference,
                                            epoch, min_fast):
    """Any epoch size — one reference, odd sizes, larger than the whole
    trace — and any bail threshold produces the scalar result."""
    vec, _ = _run("radix", gups, num_refs=1500, vectorized_engine=True,
                  vectorized_epoch=epoch, vectorized_min_fast=min_fast)
    assert vec == scalar_reference


# -- the serving layer's batch path -------------------------------------

class TestServeBatch:
    def _drive(self, vectorized: bool):
        tenant = Tenant(TenantSpec(name="t", scheme="radix"))
        tenant.config.vectorized_engine = vectorized
        tenant.apply("mmap", {"start_vpn": 0x1000, "pages": 64})
        rng = np.random.default_rng(3)
        outputs = []
        for _ in range(4):
            pages = 0x1000 + rng.integers(0, 64, SERVE_BATCH_MIN + 100)
            vas = (pages * 4096 + rng.integers(0, 4096,
                                               SERVE_BATCH_MIN + 100)).tolist()
            outputs.append(tenant.apply("translate", {"vas": vas}))
        outputs.append(tenant.apply("stats", {}))
        outputs.append(tenant.apply("digest", {}))
        return outputs

    def test_digests_bit_identical(self):
        assert self._drive(False) == self._drive(True)

    def test_mid_batch_error_leaves_scalar_partial_state(self):
        def run(vectorized):
            tenant = Tenant(TenantSpec(name="t", scheme="radix"))
            tenant.config.vectorized_engine = vectorized
            tenant.apply("mmap", {"start_vpn": 0x1000, "pages": 64})
            vas = [(0x1000 + i % 64) * 4096 for i in range(SERVE_BATCH_MIN)]
            vas += [0x999999000000, 0x1000 * 4096]
            with pytest.raises(Exception):
                tenant.apply("translate", {"vas": vas})
            return tenant.apply("stats", {}), tenant.apply("digest", {})

        assert run(False) == run(True)


# -- the TLB snapshot/version API the engine is built on ----------------

class TestMembershipSnapshotAPI:
    def _array(self):
        return TLBArray("t", entries=4, ways=2, page_size=PageSize.SIZE_4K,
                        front_index=True)

    def test_version_bumps_on_membership_changes_only(self):
        arr = self._array()
        v0 = arr.membership_version
        arr.insert(PTE(vpn=0x10, ppn=1), asid=0)
        assert arr.membership_version == v0 + 1
        # A hit reorders LRU but does not change membership.
        assert arr.lookup(0x10, 0) is not None
        assert arr.membership_version == v0 + 1
        arr.invalidate(0x10, 0)
        assert arr.membership_version == v0 + 2
        # Invalidating an absent key is a no-op.
        arr.invalidate(0x10, 0)
        assert arr.membership_version == v0 + 2

    def test_log_records_adds_deletes_and_evictions(self):
        arr = self._array()
        arr.membership_log = []
        arr.insert(PTE(vpn=0x10, ppn=1), asid=0)
        assert [e[:3] for e in arr.membership_log] == [("add", 0, 0x10)]
        arr.membership_log.clear()
        # Same set (2 sets, 2 ways): 0x10, 0x12, 0x14 collide; the
        # third insert evicts the LRU (0x10) and logs the eviction.
        arr.insert(PTE(vpn=0x12, ppn=2), asid=0)
        arr.insert(PTE(vpn=0x14, ppn=3), asid=0)
        kinds = [e[:3] for e in arr.membership_log]
        assert ("del", 0, 0x10) in kinds
        assert ("add", 0, 0x14) in kinds

    def test_snapshot_entries_round_trips(self):
        arr = self._array()
        for vpn in (0x10, 0x11, 0x13):
            arr.insert(PTE(vpn=vpn, ppn=vpn + 1), asid=0)
        seen = {(asid, page_vpn)
                for asid, page_vpn, _pte, _s, _k in arr.snapshot_entries()}
        assert seen == {(0, 0x10), (0, 0x11), (0, 0x13)}

    def test_packed_context_staleness(self):
        table = IdealPageTable()
        table.map(PTE(vpn=0x20, ppn=5))
        hierarchy = __import__(
            "repro.mmu.hierarchy", fromlist=["MemoryHierarchy"]
        ).MemoryHierarchy()
        mmu = MMU(IdealWalker(table, hierarchy))
        ctx = mmu.packed_context()
        assert not ctx.is_stale()
        mmu.translate(0x20 << 12)  # walk fills the TLB: membership moves
        assert ctx.is_stale()
        assert not mmu.packed_context().is_stale()
