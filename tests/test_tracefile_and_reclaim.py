"""Tests for trace persistence and index compaction/reclaim."""

import numpy as np
import pytest

from repro.core import LearnedIndex
from repro.kernel import LVMManager
from repro.mem import BumpAllocator
from repro.types import PTE
from repro.workloads import (
    TraceMismatch,
    build_workload,
    load_trace,
    save_trace,
)


class TestTraceFile:
    def test_roundtrip(self, tmp_path):
        workload = build_workload("gups")
        path = tmp_path / "gups.npz"
        header = save_trace(path, workload, 4000, seed=9)
        addresses, loaded = load_trace(path)
        assert loaded == header
        assert len(addresses) == 4000
        # Identical to a fresh generation with the same seed.
        assert np.array_equal(addresses, workload.trace(4000, 9))

    def test_workload_validation(self, tmp_path):
        workload = build_workload("gups")
        path = tmp_path / "t.npz"
        save_trace(path, workload, 1000)
        load_trace(path, expect_workload="gups")
        with pytest.raises(TraceMismatch):
            load_trace(path, expect_workload="mem$")

    def test_header_carries_instruction_rate(self, tmp_path):
        workload = build_workload("mem$")
        path = tmp_path / "m.npz"
        header = save_trace(path, workload, 500)
        assert header.instructions_per_ref == workload.info.instructions_per_ref


class TestReclaim:
    def test_compact_reclaims_after_mass_free(self):
        index = LearnedIndex(BumpAllocator())
        index.bulk_build([PTE(vpn=v, ppn=v) for v in range(40_000)])
        peak = index.table_bytes
        for v in range(10_000, 40_000):
            index.remove(v)
        # Section 5.2: frees keep the space...
        assert index.table_bytes == peak
        # ...until the OS decides to rebuild and reclaim (section 7.3).
        reclaimed = index.compact()
        assert reclaimed > 0.5 * peak
        assert index.lookup(5_000).hit
        assert not index.lookup(20_000).hit

    def test_compact_counts_as_rebuild(self):
        index = LearnedIndex(BumpAllocator())
        index.bulk_build([PTE(vpn=v, ppn=v) for v in range(1000)])
        rebuilds = index.stats.full_rebuilds
        index.compact()
        assert index.stats.full_rebuilds == rebuilds + 1
        assert index.stats.lwc_flushes >= 1

    def test_manager_reclaim(self):
        manager = LVMManager(BumpAllocator())
        manager.begin_batch()
        for v in range(20_000):
            manager.map(PTE(vpn=v, ppn=v))
        manager.end_batch()
        for v in range(5_000, 20_000):
            manager.unmap(v)
        freed = manager.reclaim()
        assert freed > 0
        assert manager.find(100) is not None

    def test_compact_on_empty_index(self):
        index = LearnedIndex(BumpAllocator())
        index.bulk_build([])
        assert index.compact() == 0
