"""The scheme registry and descriptor protocol (`repro.schemes`).

Three properties are pinned here:

* **Golden bit-identity** — the descriptor refactor reproduces the
  pre-refactor simulator cycle-for-cycle: every (scheme, thp) cell in
  ``tests/golden/scheme_cells.json`` (generated *before* the refactor)
  must match field-for-field, serially and through the parallel sweep.
* **The registry is a real extension point** — a custom scheme defined
  in this module (outside ``repro/schemes/``) runs end-to-end through
  the serial simulator and ``run_suite(jobs=2)`` bit-identically,
  without modifying any core module.
* **Eager validation** — unknown scheme names fail at suite
  construction with the list of registered schemes, never inside a
  worker.
"""

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.errors import (
    ConfigError,
    SchemeCapabilityError,
    UnknownSchemeError,
)
from repro.mem.allocator import BumpAllocator
from repro.mmu.walker import WalkOutcome
from repro.pagetables.hashed import HashedPageTable
from repro.pagetables.radix import RadixPageTable
from repro.schemes import SchemeDescriptor, registry
from repro.schemes.ecpt import ECPTScheme
from repro.sim import EXTENDED_SCHEMES, SCHEMES, SimConfig, Simulator, run_suite
from repro.virt import build_host_mapping
from repro.workloads import build_workload

GOLDEN_PATH = Path(__file__).parent / "golden" / "scheme_cells.json"
REFS = 2_000


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def gups():
    return build_workload("gups")


# -- a custom scheme, defined entirely outside repro/schemes/ -----------

class UncachedWalker:
    """Minimal walker: every software access goes to the hierarchy,
    serially, with no walk cache at all."""

    def __init__(self, table, hierarchy):
        self.table = table
        self.hierarchy = hierarchy
        self.walks = 0
        self.total_cycles = 0
        self.total_accesses = 0

    def walk(self, vpn: int, asid: int = 0) -> WalkOutcome:
        result = self.table.walk(vpn)
        cycles = 0
        for access in result.accesses:
            cycles += self.hierarchy.walk_access(access.paddr)
        issued = len(result.accesses)
        self.walks += 1
        self.total_cycles += cycles
        self.total_accesses += issued
        return WalkOutcome(result.pte, cycles, issued)


class ToyHashedScheme(SchemeDescriptor):
    """Blake2 hashed page table as a translation scheme — reuses the
    section-7.3 collision-study table, which no built-in descriptor
    wires into the simulator."""

    name = "toy-hashed"
    description = "test-only: Blake2 hashed page table, uncached walker"
    aliases = ("toyhash",)

    def make_page_table(self, sim):
        return HashedPageTable(sim.allocator)

    def make_walker(self, sim):
        return UncachedWalker(sim.page_table, sim.hierarchy)


@pytest.fixture(scope="module", autouse=True)
def _toy_scheme():
    descriptor = registry.register(ToyHashedScheme())
    yield descriptor
    registry.unregister(descriptor.name)


@pytest.fixture(autouse=True)
def _allow_oversubscription(monkeypatch):
    """The jobs=2 sweeps below must exercise a real pool even on a
    one-CPU CI box; the guardrail's serial fallback would make their
    parallel bit-identity claims vacuous."""
    monkeypatch.setenv("REPRO_OVERSUBSCRIBE", "1")


# -- golden bit-identity across the refactor ----------------------------

class TestGoldenBitIdentity:
    def test_serial_matches_pre_refactor(self, golden, gups):
        assert golden["workload"] == "gups"
        for rec in golden["results"]:
            cfg = SimConfig(num_refs=golden["refs"], thp=rec["thp"])
            result = Simulator(rec["scheme"], gups, cfg).run()
            assert asdict(result) == rec, (rec["scheme"], rec["thp"])

    def test_parallel_matches_pre_refactor(self, golden):
        results = run_suite(
            [golden["workload"]],
            schemes=EXTENDED_SCHEMES,
            page_modes=(False, True),
            config=SimConfig(num_refs=golden["refs"]),
            jobs=2,
        )
        assert not results.failures
        for rec in golden["results"]:
            run = results.get(golden["workload"], rec["scheme"], rec["thp"])
            assert asdict(run) == rec, (rec["scheme"], rec["thp"])

    def test_golden_covers_every_builtin(self, golden):
        covered = {r["scheme"] for r in golden["results"]}
        assert covered == set(EXTENDED_SCHEMES)


# -- the extension point ------------------------------------------------

class TestCustomScheme:
    def test_runs_serially(self, gups):
        result = Simulator("toy-hashed", gups, SimConfig(num_refs=REFS)).run()
        assert result.scheme == "toy-hashed"
        assert result.walks > 0
        assert result.cycles > 0
        assert result.table_bytes > 0

    def test_serial_and_parallel_bit_identical(self):
        cfg = SimConfig(num_refs=REFS)
        serial = run_suite(
            ["gups"], ["toy-hashed"], page_modes=(False,), config=cfg, jobs=1
        )
        parallel = run_suite(
            ["gups"], ["toy-hashed"], page_modes=(False,), config=cfg, jobs=2
        )
        assert len(serial.results) == len(parallel.results) == 1
        assert asdict(serial.results[0]) == asdict(parallel.results[0])

    def test_alias_canonicalizes_everywhere(self, gups):
        sim = Simulator("toyhash", gups, SimConfig(num_refs=100))
        assert sim.scheme == "toy-hashed"
        results = run_suite(
            ["gups"], ["toyhash"], page_modes=(False,),
            config=SimConfig(num_refs=100),
        )
        assert results.results[0].scheme == "toy-hashed"

    def test_descriptor_instance_accepted_directly(self, gups):
        unregistered = ToyHashedScheme()
        result = Simulator(unregistered, gups, SimConfig(num_refs=100)).run()
        assert result.scheme == "toy-hashed"


# -- registry semantics -------------------------------------------------

class TestRegistry:
    def test_builtins_registered_in_order(self):
        assert registry.core_schemes() == ("radix", "ecpt", "lvm", "ideal")
        assert SCHEMES == ("radix", "ecpt", "lvm", "ideal")
        assert EXTENDED_SCHEMES == SCHEMES + ("fpt", "asap", "midgard")

    def test_aliases_resolve(self):
        assert registry.canonical_name("cuckoo") == "ecpt"
        assert registry.canonical_name("x86") == "radix"
        assert registry.canonical_name("learned") == "lvm"
        assert registry.get("oracle") is registry.get("ideal")

    def test_unknown_scheme_lists_available(self):
        with pytest.raises(UnknownSchemeError, match="radix.*lvm"):
            registry.get("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            registry.register(ToyHashedScheme())
        # replace=True swaps the registration in place.
        replacement = registry.register(ToyHashedScheme(), replace=True)
        assert registry.get("toy-hashed") is replacement

    def test_provider_module_recorded(self):
        assert registry.provider_module("toy-hashed") == __name__
        assert registry.provider_module("lvm") == "repro.schemes.lvm"

    def test_ecpt_sizing_defined_once(self):
        assert ECPTScheme.initial_size_for_scale(1) == 16384
        assert ECPTScheme.initial_size_for_scale(64) == 256
        assert ECPTScheme.initial_size_for_scale(1 << 20) == 256


# -- eager validation ---------------------------------------------------

class TestEagerValidation:
    def test_run_suite_serial_rejects_up_front(self):
        with pytest.raises(UnknownSchemeError, match="registered schemes"):
            run_suite(["gups"], ["nope"], config=SimConfig(num_refs=100))

    def test_run_suite_parallel_rejects_before_forking(self):
        with pytest.raises(UnknownSchemeError, match="registered schemes"):
            run_suite(
                ["gups"], ["nope"], config=SimConfig(num_refs=100), jobs=2
            )

    def test_cli_rejects_unknown_scheme_with_exit_2(self, capsys):
        code = cli_main(["fig9", "--refs", "100", "--schemes", "bogus"])
        assert code == 2
        assert "registered schemes" in capsys.readouterr().err

    def test_cli_schemes_listing(self, capsys):
        assert cli_main(["schemes"]) == 0
        out = capsys.readouterr().out
        for name in EXTENDED_SCHEMES:
            assert name in out
        assert "lwc" in out and "cwc" in out and "pwc" in out


# -- capability flags ---------------------------------------------------

class TestCapabilities:
    def test_virtualization_capable_schemes(self):
        assert set(registry.virtualization_schemes()) == {"radix", "lvm"}

    def test_host_mapping_via_registry(self):
        table = build_host_mapping(64, BumpAllocator(base=1 << 40), "x86")
        assert isinstance(table, RadixPageTable)

    def test_host_mapping_rejects_incapable_scheme(self):
        with pytest.raises(SchemeCapabilityError, match="virtualization"):
            build_host_mapping(64, BumpAllocator(base=1 << 40), "ecpt")
